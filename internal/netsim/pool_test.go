package netsim

import (
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// TestFlowRecordsRecycled: records return to the pool when flows finish,
// and a stale ref must report finished without touching the reused record.
func TestFlowRecordsRecycled(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	ref1 := f.StartFlow("a", "b", units.Bytes(1e6), nil)
	eng.Run()
	if !ref1.Finished() {
		t.Fatal("first flow not finished")
	}
	if got := len(f.freeFlows); got != flowChunk {
		t.Fatalf("free list has %d records after completion, want %d", got, flowChunk)
	}
	// The next flow must reuse the recycled record; the stale ref stays dead.
	ref2 := f.StartFlow("a", "b", units.Bytes(1e6), nil)
	if ref1.fl != ref2.fl {
		t.Fatal("record not reused from the pool")
	}
	if ref1.Finished() != true || ref2.Finished() {
		t.Fatal("stale ref leaked into the reused record")
	}
	if ref1.Rate() != 0 {
		t.Fatal("dead ref reports a rate")
	}
	eng.Run()
	if !ref2.Finished() {
		t.Fatal("second flow not finished")
	}
}

// TestFlowZeroRefInert: the zero FlowRef is inert.
func TestFlowZeroRefInert(t *testing.T) {
	var r FlowRef
	if r.Finished() || r.Rate() != 0 {
		t.Fatal("zero ref not inert")
	}
}

// BenchmarkFlowChurn measures the per-flow cost of the bulk-transfer path:
// start → water-filling admission → completion. With pooled records the
// steady state does not allocate per flow beyond the engine's own events.
func BenchmarkFlowChurn(b *testing.B) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Gbps(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.StartFlow("a", "b", units.Bytes(1e6), nil)
		eng.Run()
	}
}

// BenchmarkFlowChurnConcurrent keeps 8 flows in flight per round, the
// shuffle-like shape that stresses reallocation.
func BenchmarkFlowChurnConcurrent(b *testing.B) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Gbps(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			f.StartFlow("a", "b", units.Bytes(1e6), nil)
		}
		eng.Run()
	}
}
