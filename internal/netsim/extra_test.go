package netsim

import (
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

func TestConnectAsymOneWay(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng)
	f.AddVertex("a")
	f.AddVertex("b")
	f.ConnectAsym("a", "b", units.Mbps(100), 0)
	if got := len(f.Route("a", "b")); got != 1 {
		t.Fatalf("forward route %d hops", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reverse route should not exist")
		}
	}()
	f.Route("b", "a")
}

func TestRouteCacheInvalidatedByConnect(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng)
	for _, v := range []string{"a", "b", "c"} {
		f.AddVertex(v)
	}
	f.Connect("a", "b", units.Mbps(100), 0)
	f.Connect("b", "c", units.Mbps(100), 0)
	if got := len(f.Route("a", "c")); got != 2 {
		t.Fatalf("route a-c %d hops, want 2", got)
	}
	// A direct cable should shorten the path after cache invalidation.
	f.Connect("a", "c", units.Mbps(100), 0)
	if got := len(f.Route("a", "c")); got != 1 {
		t.Fatalf("route a-c after direct link %d hops, want 1", got)
	}
}

func TestMessagesAndFlowsCoexist(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	var msgDone, flowDone bool
	f.StartFlow("a", "b", units.Bytes(12.5e6/2), func() { flowDone = true })
	f.Send("a", "b", 1000, func() { msgDone = true })
	eng.Run()
	if !msgDone || !flowDone {
		t.Fatalf("msg=%v flow=%v", msgDone, flowDone)
	}
}

func TestConnectUnknownVertexPanics(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng)
	f.AddVertex("a")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown vertex")
		}
	}()
	f.Connect("a", "ghost", units.Mbps(10), 0)
}

func TestFlowRateVisible(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	fl := f.StartFlow("a", "b", units.Bytes(12.5e6), nil)
	eng.Step() // admit flow into the sharing set
	if fl.Finished() {
		t.Fatal("finished too early")
	}
	eng.RunUntil(0.5)
	if r := float64(fl.Rate()); r < 12.4e6/1.01 || r > 12.6e6 {
		t.Fatalf("single-flow rate %g, want ≈12.5e6 B/s", r)
	}
	eng.Run()
	if !fl.Finished() {
		t.Fatal("flow never finished")
	}
}

func TestManyConcurrentFlowsConserveBytes(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	const n = 20
	size := units.Bytes(1e6)
	done := 0
	for i := 0; i < n; i++ {
		f.StartFlow("a", "b", size, func() { done++ })
	}
	eng.Run()
	if done != n {
		t.Fatalf("%d flows finished, want %d", done, n)
	}
	// Each flow crosses 2 links.
	want := units.Bytes(n) * size * 2
	got := f.TotalBytes()
	if got < want*99/100 || got > want*101/100 {
		t.Fatalf("carried %v, want ≈%v", got, want)
	}
}
