package netsim

import (
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

func TestSetVertexLinksDegradeSlowsFlow(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, 10*units.MBps, 0)
	var doneAt sim.Time
	// 10 MB at 10 MB/s = 1 s healthy. Halving b's links at t=0.5 leaves
	// 5 MB to drain at 5 MB/s: done at 1.5 s.
	f.StartFlow("a", "b", 10*units.MB, func() { doneAt = eng.Now() })
	eng.After(0.5, func() { f.SetVertexLinks("b", 0.5) })
	eng.Run()
	if !almost(float64(doneAt), 1.5, 1e-9) {
		t.Fatalf("degraded flow done at %v, want 1.5", doneAt)
	}
}

func TestSetVertexLinksRestoreIsExact(t *testing.T) {
	// A degrade-and-restore cycle on an idle vertex must leave behavior
	// bit-identical to an untouched fabric (scale 1 multiplies exactly).
	run := func(touch bool) sim.Time {
		eng := sim.NewEngine()
		f := lineFabric(eng, 10*units.MBps, 1e-3)
		if touch {
			f.SetVertexLinks("b", 0.25)
			f.SetVertexLinks("b", 1)
		}
		var doneAt sim.Time
		f.StartFlow("a", "b", 7*units.MB, func() { doneAt = eng.Now() })
		eng.Run()
		return doneAt
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("restored fabric differs from untouched: %v vs %v", a, b)
	}
}

func TestLinkCutAbortsCrossingFlows(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, 10*units.MBps, 0)
	done := false
	f.StartFlow("a", "b", 10*units.MB, func() { done = true })
	eng.After(0.5, func() { f.SetVertexLinks("b", 0) })
	eng.Run()
	if done {
		t.Fatal("flow across a cut link completed; its done callback must never fire")
	}
	if n := f.ActiveFlows(); n != 0 {
		t.Fatalf("%d flows still active after the cut, want 0", n)
	}
}

func TestLinkCutSparesDisjointFlows(t *testing.T) {
	// a--sw--b and c--sw--d: cutting d's links must abort only the c→d flow
	// and give a→b its full capacity back.
	eng := sim.NewEngine()
	f := NewFabric(eng)
	for _, v := range []string{"a", "b", "c", "d", "sw"} {
		f.AddVertex(v)
	}
	for _, v := range []string{"a", "b", "c", "d"} {
		f.Connect(v, "sw", 10*units.MBps, 0)
	}
	var abDone, cdDone bool
	f.StartFlow("a", "b", 10*units.MB, func() { abDone = true })
	f.StartFlow("c", "d", 10*units.MB, func() { cdDone = true })
	eng.After(0.5, func() { f.SetVertexLinks("d", 0) })
	eng.Run()
	if !abDone || cdDone {
		t.Fatalf("after cutting d: a→b done=%v (want true), c→d done=%v (want false)", abDone, cdDone)
	}
}

func TestFlowOverDownLinkWaitsForRestore(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, 10*units.MBps, 0)
	f.SetVertexLinks("b", 0)
	var doneAt sim.Time
	// Admitted at rate 0 while the link is down; restored at t=2, the
	// 10 MB drain at 10 MB/s, done at 3.
	f.StartFlow("a", "b", 10*units.MB, func() { doneAt = eng.Now() })
	eng.After(2, func() { f.SetVertexLinks("b", 1) })
	eng.Run()
	if !almost(float64(doneAt), 3.0, 1e-9) {
		t.Fatalf("flow over restored link done at %v, want 3.0", doneAt)
	}
}

func TestMessageDroppedAtDownLink(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, 10*units.MBps, 0)
	f.SetVertexLinks("b", 0)
	delivered := false
	f.Send("a", "b", 1000, func() { delivered = true })
	eng.Run()
	if delivered {
		t.Fatal("message crossed a down link")
	}
}

func TestSetVertexLinksRejectsBadScale(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, 10*units.MBps, 0)
	for _, bad := range []float64{-1, nan()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetVertexLinks(%v) did not panic", bad)
				}
			}()
			f.SetVertexLinks("b", bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetVertexLinks on unknown vertex did not panic")
			}
		}()
		f.SetVertexLinks("nope", 0.5)
	}()
}

func nan() float64 {
	z := 0.0
	return z / z
}

// BenchmarkSendDegraded pins the degraded-path cost: messaging over a link
// running at half capacity must stay allocation-free like the healthy path
// BenchmarkSend pins.
func BenchmarkSendDegraded(b *testing.B) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Gbps(1), 0)
	f.SetVertexLinks("b", 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send("a", "b", 1000, nil)
		eng.Run()
	}
}
