package netsim

import (
	"math"

	"edisim/internal/sim"
)

// Incremental max-min reallocation.
//
// Flow arrivals and departures perturb only the connected component of the
// flow/link sharing graph they touch: a flow's rate can change only if it
// shares a link — transitively — with a link whose flow set changed. Every
// admission and completion therefore marks its path links dirty
// (markDirty), and reallocate recomputes the water-filling pass only for
// the flows in components carrying a dirty link, keeping the frozen shares
// of every untouched flow. A clean component's flow and link sets are
// unchanged since its rates were last computed, and the water-filling pass
// is a deterministic function of exactly those sets, so the kept rates are
// bit-identical to what a full recompute would assign — pinned by
// TestIncrementalWaterFillingMatchesFull against the retained full pass
// (SetFullReallocate), which also remains available as a fallback.
//
// Component discovery is a union-find sweep over the active flows — linear
// in the flow set like the progress-crediting advanceFlows pass — so the
// per-event cost drops from O(bottleneck rounds × flows × links) to the
// linear sweeps plus a water-filling pass over just the perturbed region.
// (advanceFlows stays eager over all flows on purpose: crediting progress
// in the same per-event chunks as the full recompute keeps the float
// arithmetic — and therefore cmd/paper output — bit-identical.)

// markDirty queues the link for the next reallocate pass. Idempotent
// between passes.
func (f *Fabric) markDirty(l *Link) {
	if !l.dirty {
		l.dirty = true
		f.dirtyLinks = append(f.dirtyLinks, l)
	}
}

// clearDirty empties the dirty-link list.
func (f *Fabric) clearDirty() {
	for _, l := range f.dirtyLinks {
		l.dirty = false
	}
	f.dirtyLinks = f.dirtyLinks[:0]
}

// ufFind follows parents to the representative flow index, halving the
// path as it goes.
func ufFind(parent []int32, i int32) int32 {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// ufUnion joins the components of a and b, keeping the smaller index as the
// representative so the result is deterministic.
func ufUnion(parent []int32, a, b int32) {
	ra, rb := ufFind(parent, a), ufFind(parent, b)
	if ra == rb {
		return
	}
	if ra < rb {
		parent[rb] = ra
	} else {
		parent[ra] = rb
	}
}

// affectedFlows computes the set of flows whose rate may have changed since
// the last pass: the union of the flow/link connected components containing
// a dirty link. It consumes (clears) the dirty-link list and returns the
// affected flows in admission order, in reusable scratch storage.
func (f *Fabric) affectedFlows() []*Flow {
	n := len(f.flows)
	if cap(f.ufParent) < n {
		f.ufParent = make([]int32, n)
		f.rootMark = make([]uint64, n)
	}
	parent := f.ufParent[:n]
	mark := f.rootMark[:n]
	for i := range parent {
		parent[i] = int32(i)
	}
	// Union flows sharing a link; linkOwner remembers the first flow seen
	// on each link.
	clear(f.linkOwner)
	for i, fl := range f.flows {
		for _, l := range fl.path {
			if o, ok := f.linkOwner[l]; ok {
				ufUnion(parent, o, int32(i))
			} else {
				f.linkOwner[l] = int32(i)
			}
		}
	}
	// Stamp the components that carry a dirty link. A dirty link with no
	// remaining flows has no component and needs no recompute.
	for _, l := range f.dirtyLinks {
		l.dirty = false
		if o, ok := f.linkOwner[l]; ok {
			mark[ufFind(parent, o)] = f.epoch
		}
	}
	f.dirtyLinks = f.dirtyLinks[:0]
	aff := f.affScratch[:0]
	for i, fl := range f.flows {
		if mark[ufFind(parent, int32(i))] == f.epoch {
			aff = append(aff, fl)
		}
	}
	f.affScratch = aff
	return aff
}

// reallocate brings the max-min fair allocation up to date after flow
// arrivals/departures (restricted to the perturbed components, see the
// package comment above), then re-arms the single next-completion event.
func (f *Fabric) reallocate() {
	f.epoch++
	f.nextDone.Cancel()
	f.nextDone = sim.EventRef{}
	if len(f.flows) == 0 {
		f.clearDirty()
		return
	}

	affected := f.flows
	if !f.fullRealloc {
		affected = f.affectedFlows()
	} else {
		f.clearDirty()
	}
	if len(affected) > 0 {
		f.waterFill(affected)
	}

	// Re-arm the completion event for the earliest-finishing flow.
	next := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	if next < 0 {
		next = 0
	}
	f.nextDone = f.eng.After(next, f.completeFn)
}

// waterFill runs progressive filling (water-filling) to a max-min fair
// allocation over the given flows, which must be closed under link sharing
// (no flow outside the set may cross any link used by a flow inside it) and
// in admission order.
func (f *Fabric) waterFill(flows []*Flow) {
	// Build link states in the fabric's reusable scratch: the map is
	// cleared per pass and its entries point into an arena pre-sized to
	// the link count, so append below can never relocate live pointers.
	state := f.lsScratch
	clear(state)
	if cap(f.lsArena) < len(f.links) {
		f.lsArena = make([]linkState, 0, len(f.links))
	}
	f.lsArena = f.lsArena[:0]
	for _, fl := range flows {
		for _, l := range fl.path {
			if s, ok := state[l]; ok {
				s.cnt++
			} else {
				f.lsArena = append(f.lsArena, linkState{rem: l.effCap(), cnt: 1})
				state[l] = &f.lsArena[len(f.lsArena)-1]
			}
		}
	}
	unfrozen := len(flows)
	for _, fl := range flows {
		fl.frozen = false
	}
	for unfrozen > 0 {
		// Find the tightest link among links carrying unfrozen flows.
		minShare := math.Inf(1)
		for _, s := range state {
			if s.cnt > 0 {
				if share := s.rem / float64(s.cnt); share < minShare {
					minShare = share
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a link at the bottleneck share.
		progressed := false
		for _, fl := range flows {
			if fl.frozen {
				continue
			}
			bottlenecked := false
			for _, l := range fl.path {
				s := state[l]
				if s.cnt > 0 && s.rem/float64(s.cnt) <= minShare*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			fl.rate = minShare
			fl.frozen = true
			unfrozen--
			for _, l := range fl.path {
				s := state[l]
				s.rem -= minShare
				if s.rem < 0 {
					s.rem = 0
				}
				s.cnt--
			}
			progressed = true
		}
		if !progressed {
			break // numerical safety: should not happen
		}
	}
}
