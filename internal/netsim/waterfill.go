package netsim

import (
	"math"
	"slices"

	"edisim/internal/sim"
)

// Incremental max-min reallocation with lazy progress crediting.
//
// Flow arrivals and departures perturb only the connected component of the
// flow/link sharing graph they touch: a flow's rate can change only if it
// shares a link — transitively — with a link whose flow set or capacity
// changed. Every admission, completion and capacity change therefore marks
// the links it touches dirty (markDirty), and reallocate recomputes the
// water-filling pass only for the flows in components carrying a dirty
// link, keeping the frozen shares of every untouched flow. A clean
// component's flow and link sets are unchanged since its rates were last
// computed, and the water-filling pass is a deterministic function of
// exactly those sets, so the kept rates equal what a full recompute would
// assign.
//
// Component discovery is a breadth-first sweep over the per-link flow lists
// (Link.flows, maintained by admit/unlink with O(1) swap-removal), starting
// from the dirty links: it touches only the flows and links of the
// perturbed components, never the full live set. Combined with the
// completion heap (doneheap.go) this makes the whole per-event flow path —
// crediting, component discovery, water-filling, rescheduling — independent
// of the total number of live flows: an arrival or departure costs
// O(component + log flows), where the log is the heap re-key.
//
// THE LAZY-CREDITING INVARIANT. For every live flow, `remaining` and the
// per-link byte counters are exact as of `lastT`, and the flow has been
// transferring at constant `rate` ever since; `lastT` is allowed to lag
// arbitrarily far behind the clock while the rate is frozen. Whoever is
// about to change a flow's rate — or remove the flow — must call
// Fabric.credit(fl) first, at the current time, to realize the accumulated
// progress; reallocate does this for every affected flow before water-
// filling, completion does it when popping the heap, and abortCrossing
// does it before recycling. Reads of byte counters (TotalBytes, reports)
// go through FlushProgress. Untouched flows are deliberately NOT credited
// per event — that O(flows) pass (the old eager advanceFlows) is exactly
// what this design removes; it survives only behind SetEagerReference as
// the reference implementation.
//
// Compatibility note: crediting progress in one closed-form chunk per rate
// change instead of one chunk per fabric event changes the float
// accumulation order, so completion times differ from the eager reference
// in the last bits. TestLazyMatchesEagerReference pins the two modes
// together within tolerance on randomized traces (including link-fault
// storms); the paper-output baseline was refreshed once for this change
// (see API.md).

// markDirty queues the link for the next reallocate pass. Idempotent
// between passes.
func (f *Fabric) markDirty(l *Link) {
	if !l.dirty {
		l.dirty = true
		f.dirtyLinks = append(f.dirtyLinks, l)
	}
}

// clearDirty empties the dirty-link list.
func (f *Fabric) clearDirty() {
	for _, l := range f.dirtyLinks {
		l.dirty = false
	}
	f.dirtyLinks = f.dirtyLinks[:0]
}

// affectedFlows computes the set of flows whose rate may have changed since
// the last pass: the union of the flow/link connected components containing
// a dirty link, found by BFS over the per-link flow lists. It consumes
// (clears) the dirty-link list and returns the affected flows in admission
// order, in reusable scratch storage. Cost is proportional to the size of
// the perturbed components, not the live flow set.
func (f *Fabric) affectedFlows() []*Flow {
	f.epoch++
	epoch := f.epoch
	aff := f.affScratch[:0]
	for _, l := range f.dirtyLinks {
		l.dirty = false
		l.mark = epoch
		for _, s := range l.flows {
			if s.fl.mark != epoch {
				s.fl.mark = epoch
				aff = append(aff, s.fl)
			}
		}
	}
	f.dirtyLinks = f.dirtyLinks[:0]
	// BFS: aff doubles as the traversal queue; flows appended while
	// scanning earlier flows' path links.
	for i := 0; i < len(aff); i++ {
		for _, l := range aff[i].path {
			if l.mark == epoch {
				continue
			}
			l.mark = epoch
			for _, s := range l.flows {
				if s.fl.mark != epoch {
					s.fl.mark = epoch
					aff = append(aff, s.fl)
				}
			}
		}
	}
	// Water-filling iterates (and subtracts shares) in admission order so
	// the arithmetic is independent of traversal order.
	slices.SortFunc(aff, func(a, b *Flow) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	f.affScratch = aff
	return aff
}

// reallocate brings the max-min fair allocation up to date after flow
// arrivals/departures/capacity changes: credit the lazy progress of every
// affected flow (restricted to the perturbed components, see the package
// comment above), re-water-fill them, re-key them in the completion heap,
// and re-arm the single next-completion event.
func (f *Fabric) reallocate() {
	if f.eager {
		f.reallocateEager()
		return
	}
	if len(f.dirtyLinks) > 0 {
		affected := f.affectedFlows()
		now := f.eng.Now()
		for _, fl := range affected {
			f.credit(fl) // invariant: credit before the rate may change
		}
		f.waterFill(affected)
		for _, fl := range affected {
			f.rekey(fl, now)
		}
	}
	f.armCompletion()
}

// reallocateEager is the retained reference implementation: every pass
// recomputes all flows from scratch and re-arms the completion event from a
// linear next-completion scan (the pre-lazy behavior, O(flows) per event).
func (f *Fabric) reallocateEager() {
	f.epoch++
	f.clearDirty()
	f.nextDone.Cancel()
	f.nextDone = sim.EventRef{}
	if len(f.flows) == 0 {
		return
	}
	f.waterFill(f.flows)
	next := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	if next < 0 {
		next = 0
	}
	f.nextDone = f.eng.After(next, f.completeFn)
}

// waterFill runs progressive filling (water-filling) to a max-min fair
// allocation over the given flows, which must be closed under link sharing
// (no flow outside the set may cross any link used by a flow inside it) and
// in admission order. Link working state lives inline on the Link records
// (validity-stamped by wfPass), so the pass allocates nothing and touches
// only the given flows' links.
func (f *Fabric) waterFill(flows []*Flow) {
	f.wfPass++
	pass := f.wfPass
	links := f.wfLinks[:0]
	for _, fl := range flows {
		for _, l := range fl.path {
			if l.wfPass != pass {
				l.wfPass = pass
				l.wfRem = l.effCap()
				l.wfCnt = 1
				links = append(links, l)
			} else {
				l.wfCnt++
			}
		}
	}
	f.wfLinks = links
	unfrozen := len(flows)
	for _, fl := range flows {
		fl.frozen = false
	}
	for unfrozen > 0 {
		// Find the tightest link among links carrying unfrozen flows.
		minShare := math.Inf(1)
		for _, l := range links {
			if l.wfCnt > 0 {
				if share := l.wfRem / float64(l.wfCnt); share < minShare {
					minShare = share
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a link at the bottleneck share.
		progressed := false
		for _, fl := range flows {
			if fl.frozen {
				continue
			}
			bottlenecked := false
			for _, l := range fl.path {
				if l.wfCnt > 0 && l.wfRem/float64(l.wfCnt) <= minShare*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			fl.rate = minShare
			fl.frozen = true
			unfrozen--
			for _, l := range fl.path {
				l.wfRem -= minShare
				if l.wfRem < 0 {
					l.wfRem = 0
				}
				l.wfCnt--
			}
			progressed = true
		}
		if !progressed {
			break // numerical safety: should not happen
		}
	}
}
