package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edisim/internal/sim"
	"edisim/internal/units"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// lineFabric builds a -- sw -- b with the given access capacity and delay.
func lineFabric(eng *sim.Engine, capacity units.BytesPerSec, delay float64) *Fabric {
	f := NewFabric(eng)
	for _, v := range []string{"a", "sw", "b"} {
		f.AddVertex(v)
	}
	f.Connect("a", "sw", capacity, delay)
	f.Connect("b", "sw", capacity, delay)
	return f
}

func TestRouteShortestPath(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 1e-3)
	p := f.Route("a", "b")
	if len(p) != 2 || p[0].Src != "a" || p[1].Dst != "b" {
		t.Fatalf("route %v", p)
	}
	if f.Route("a", "a") != nil {
		t.Fatal("self route not nil")
	}
}

func TestRouteMissingPanics(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng)
	f.AddVertex("a")
	f.AddVertex("b") // not connected
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unroutable pair")
		}
	}()
	f.Route("a", "b")
}

func TestLatencyAndRTT(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0.3e-3)
	if !almost(f.Latency("a", "b"), 0.6e-3, 1e-12) {
		t.Fatalf("latency %g", f.Latency("a", "b"))
	}
	if !almost(f.RTT("a", "b"), 1.2e-3, 1e-12) {
		t.Fatalf("rtt %g", f.RTT("a", "b"))
	}
}

func TestSendTransferTime(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0) // 12.5e6 B/s decimal
	var doneAt sim.Time
	f.Send("a", "b", units.Bytes(12.5e6), func() { doneAt = eng.Now() })
	eng.Run()
	// Store-and-forward over two hops: 1 s per hop.
	if !almost(float64(doneAt), 2.0, 1e-9) {
		t.Fatalf("transfer done at %v, want 2.0", doneAt)
	}
}

func TestSendQueueingDelay(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	var first, second sim.Time
	size := units.Bytes(12.5e6) // 1s per hop
	f.Send("a", "b", size, func() { first = eng.Now() })
	f.Send("a", "b", size, func() { second = eng.Now() })
	eng.Run()
	if !almost(float64(first), 2.0, 1e-9) {
		t.Fatalf("first at %v", first)
	}
	// Second waits 1s for the access link, then pipelines behind the first.
	if !almost(float64(second), 3.0, 1e-9) {
		t.Fatalf("second at %v, want 3.0", second)
	}
}

func TestSendToSelf(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	done := false
	f.Send("a", "a", units.MB, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("self-send never completed")
	}
}

func TestRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(800), 0.5e-3)
	var doneAt sim.Time
	f.RoundTrip("a", "b", 100, 100, func() { doneAt = eng.Now() })
	eng.Run()
	// Four propagation delays dominate: 4 × 0.5ms = 2ms (+tiny tx).
	if float64(doneAt) < 2e-3 || float64(doneAt) > 2.1e-3 {
		t.Fatalf("round trip %v, want ≈2ms", doneAt)
	}
}

func TestFlowSingleBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	var doneAt sim.Time
	f.StartFlow("a", "b", units.Bytes(12.5e6), func() { doneAt = eng.Now() })
	eng.Run()
	if !almost(float64(doneAt), 1.0, 1e-6) {
		t.Fatalf("flow done at %v, want 1.0", doneAt)
	}
}

func TestFlowFairSharing(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	var t1, t2 sim.Time
	size := units.Bytes(12.5e6)
	f.StartFlow("a", "b", size, func() { t1 = eng.Now() })
	f.StartFlow("a", "b", size, func() { t2 = eng.Now() })
	eng.Run()
	// Two flows share the a->sw link: both take ≈2s.
	if !almost(float64(t1), 2.0, 1e-6) || !almost(float64(t2), 2.0, 1e-6) {
		t.Fatalf("flows done at %v, %v, want 2.0", t1, t2)
	}
}

func TestFlowMaxMinUnsharedPath(t *testing.T) {
	// a--sw--b and c--sw--d: flows a->b and c->d do not share links.
	eng := sim.NewEngine()
	f := NewFabric(eng)
	for _, v := range []string{"a", "b", "c", "d", "sw"} {
		f.AddVertex(v)
	}
	for _, h := range []string{"a", "b", "c", "d"} {
		f.Connect(h, "sw", units.Mbps(100), 0)
	}
	var t1, t2 sim.Time
	size := units.Bytes(12.5e6)
	f.StartFlow("a", "b", size, func() { t1 = eng.Now() })
	f.StartFlow("c", "d", size, func() { t2 = eng.Now() })
	eng.Run()
	if !almost(float64(t1), 1.0, 1e-6) || !almost(float64(t2), 1.0, 1e-6) {
		t.Fatalf("disjoint flows done at %v, %v, want 1.0", t1, t2)
	}
}

func TestFlowBottleneckRelease(t *testing.T) {
	// A short flow and a long flow share a link; when the short one ends the
	// long one speeds up: total time < sequential but > unshared.
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	const mbps = 12.5e6
	var longDone sim.Time
	f.StartFlow("a", "b", units.Bytes(2*mbps), func() { longDone = eng.Now() })
	f.StartFlow("a", "b", units.Bytes(0.5*mbps), nil)
	eng.Run()
	// Short: 0.5 at half rate → done at t=1. Long: 0.5 done by t=1,
	// remaining 1.5 at full rate → done at 2.5.
	if !almost(float64(longDone), 2.5, 1e-6) {
		t.Fatalf("long flow done at %v, want 2.5", longDone)
	}
}

func TestFlowZeroSize(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	done := false
	f.StartFlow("a", "b", 0, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero-size flow never completed")
	}
}

func TestLinkByteAccounting(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	f.Send("a", "b", units.MB, nil)
	eng.Run()
	// Message crosses 2 links.
	if got := f.TotalBytes(); got != 2*units.MB {
		t.Fatalf("total bytes %v, want 2MB", got)
	}
}

// Property: with n equal flows over one shared bottleneck, all finish at
// n × single-flow time (work conservation + fairness).
func TestFlowFairnessProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		eng := sim.NewEngine()
		fab := lineFabric(eng, units.Mbps(100), 0)
		size := units.Bytes(12.5e6 / 4) // 0.25s alone
		times := make([]sim.Time, 0, n)
		for i := 0; i < n; i++ {
			fab.StartFlow("a", "b", size, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		want := 0.25 * float64(n)
		for _, at := range times {
			if !almost(float64(at), want, 1e-6) {
				return false
			}
		}
		return len(times) == n && fab.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
