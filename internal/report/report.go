// Package report renders experiment output: aligned ASCII tables, CSV, and
// labeled x/y series ("figures"). Every cmd tool and EXPERIMENTS.md row goes
// through these types so paper-vs-measured comparisons look uniform.
//
// Cells are typed Values (number + unit + display hint), so emitters beyond
// the aligned-text renderer — the stable JSON schema and CSV — keep each
// number's dimension instead of flattening everything to strings at
// construction time. The text renderer is the reference output: a Value
// renders exactly the way the pre-typed stringly tables did.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates what a Value holds.
type Kind int

const (
	// KindString is a label cell (row names, cluster labels).
	KindString Kind = iota
	// KindFloat is a measurement; text-rendered with %.4g like every float
	// cell has been since the first table.
	KindFloat
	// KindInt is an exact count (node counts, replica counts).
	KindInt
)

// Value is one typed table cell: a measurement with its unit and display
// hint, or a plain label. The zero value is the empty string cell.
type Value struct {
	Kind Kind
	Str  string  // KindString
	Num  float64 // KindFloat
	Int  int64   // KindInt
	// Unit tags the measurement's dimension ("s", "J", "req/s", "W", "$").
	// It does not affect text rendering — units stay in headers and titles
	// there — but survives into the JSON emitter (CSV surfaces column
	// units only, as a comment line).
	Unit string
}

// S builds a label cell.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// Num builds a measurement cell with a unit tag.
func Num(v float64, unit string) Value { return Value{Kind: KindFloat, Num: v, Unit: unit} }

// Count builds an exact integer cell with a unit tag.
func Count(n int64, unit string) Value { return Value{Kind: KindInt, Int: n, Unit: unit} }

// Cell converts an arbitrary AddRow argument to a Value. Values pass
// through; floats become KindFloat, ints KindInt, everything else is
// stringified with %v exactly as AddRow always did.
func Cell(c any) Value {
	switch v := c.(type) {
	case Value:
		return v
	case float64:
		return Value{Kind: KindFloat, Num: v}
	case int:
		return Value{Kind: KindInt, Int: int64(v)}
	case int64:
		return Value{Kind: KindInt, Int: v}
	case string:
		return S(v)
	default:
		return S(fmt.Sprintf("%v", c))
	}
}

// String renders the cell for the aligned-text table: floats with %.4g,
// ints exactly, labels as-is — byte-identical to the pre-typed renderer.
func (v Value) String() string {
	switch v.Kind {
	case KindFloat:
		return trimFloat(v.Num)
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	default:
		return v.Str
	}
}

// Float reports the cell's numeric value (ints widen), and whether it is
// numeric at all.
func (v Value) Float() (float64, bool) {
	switch v.Kind {
	case KindFloat:
		return v.Num, true
	case KindInt:
		return float64(v.Int), true
	default:
		return 0, false
	}
}

// Table is a simple column-aligned table over typed cells.
type Table struct {
	Title   string
	Headers []string
	// Units optionally tags each column's dimension (same length as
	// Headers, "" where dimensionless); emitters carry it, the text
	// renderer ignores it.
	Units []string
	Rows  [][]Value
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// WithUnits sets the per-column unit tags and returns the table. It must be
// given one unit per header ("" for dimensionless columns).
func (t *Table) WithUnits(units ...string) *Table {
	if len(units) != len(t.Headers) {
		panic(fmt.Sprintf("report: table %q has %d columns, got %d units",
			t.Title, len(t.Headers), len(units)))
	}
	t.Units = units
	return t
}

// AddRow appends a row; cells may be Values or any plain value (floats,
// ints, strings), which convert via Cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]Value, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r))
		for i, c := range r {
			s := c.String()
			cells[ri][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range cells {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted where needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = c.String()
		}
		writeCSVRow(&b, cells)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

// Series is one named curve of a figure: y values over shared x values.
type Series struct {
	Label string
	Y     []float64
}

// Figure is a set of curves over a common x axis, mirroring a paper figure.
// XLabel and YLabel double as the axes' units in the JSON emitter.
type Figure struct {
	Name   string // e.g. "Figure 4"
	XLabel string
	YLabel string
	X      []float64
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(name, xlabel, ylabel string, x []float64) *Figure {
	return &Figure{Name: name, XLabel: xlabel, YLabel: ylabel, X: x}
}

// Add appends a curve; it must have one y per x.
func (f *Figure) Add(label string, y []float64) {
	if len(y) != len(f.X) {
		panic(fmt.Sprintf("report: series %q has %d points, figure has %d x values",
			label, len(y), len(f.X)))
	}
	f.Series = append(f.Series, &Series{Label: label, Y: y})
}

// Table renders the figure as a table with one column per series. The x
// column keeps the figure's x label; series columns carry the y label as
// their unit tag.
func (f *Figure) Table() *Table {
	headers := append([]string{f.XLabel}, make([]string, len(f.Series))...)
	units := make([]string, len(f.Series)+1)
	for i, s := range f.Series {
		headers[i+1] = s.Label
		units[i+1] = f.YLabel
	}
	t := NewTable(fmt.Sprintf("%s — %s", f.Name, f.YLabel), headers...).WithUnits(units...)
	for i, x := range f.X {
		row := make([]any, 0, len(f.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			row = append(row, Num(s.Y[i], f.YLabel))
		}
		t.AddRow(row...)
	}
	return t
}

// String renders the figure via its table form.
func (f *Figure) String() string { return f.Table().String() }

// Comparison records paper-reported vs simulator-measured values for
// EXPERIMENTS.md.
type Comparison struct {
	Artifact string // e.g. "Table 8 / wordcount / 35 Edison"
	Metric   string // e.g. "energy (J)"
	Paper    float64
	Measured float64
}

// RatioError reports measured/paper as a factor (1.0 = exact).
func (c Comparison) RatioError() float64 {
	if c.Paper == 0 {
		return 0
	}
	return c.Measured / c.Paper
}

// String renders one comparison line.
func (c Comparison) String() string {
	return fmt.Sprintf("%-48s %-18s paper=%-10.4g sim=%-10.4g ratio=%.2f",
		c.Artifact, c.Metric, c.Paper, c.Measured, c.RatioError())
}
