// Package report renders experiment output: aligned ASCII tables, CSV, and
// labeled x/y series ("figures"). Every cmd tool and EXPERIMENTS.md row goes
// through these types so paper-vs-measured comparisons look uniform.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted where needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

// Series is one named curve of a figure: y values over shared x values.
type Series struct {
	Label string
	Y     []float64
}

// Figure is a set of curves over a common x axis, mirroring a paper figure.
type Figure struct {
	Name   string // e.g. "Figure 4"
	XLabel string
	YLabel string
	X      []float64
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(name, xlabel, ylabel string, x []float64) *Figure {
	return &Figure{Name: name, XLabel: xlabel, YLabel: ylabel, X: x}
}

// Add appends a curve; it must have one y per x.
func (f *Figure) Add(label string, y []float64) {
	if len(y) != len(f.X) {
		panic(fmt.Sprintf("report: series %q has %d points, figure has %d x values",
			label, len(y), len(f.X)))
	}
	f.Series = append(f.Series, &Series{Label: label, Y: y})
}

// Table renders the figure as a table with one column per series.
func (f *Figure) Table() *Table {
	headers := append([]string{f.XLabel}, make([]string, len(f.Series))...)
	for i, s := range f.Series {
		headers[i+1] = s.Label
	}
	t := NewTable(fmt.Sprintf("%s — %s", f.Name, f.YLabel), headers...)
	for i, x := range f.X {
		row := make([]any, 0, len(f.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			row = append(row, s.Y[i])
		}
		t.AddRow(row...)
	}
	return t
}

// String renders the figure via its table form.
func (f *Figure) String() string { return f.Table().String() }

// Comparison records paper-reported vs simulator-measured values for
// EXPERIMENTS.md.
type Comparison struct {
	Artifact string // e.g. "Table 8 / wordcount / 35 Edison"
	Metric   string // e.g. "energy (J)"
	Paper    float64
	Measured float64
}

// RatioError reports measured/paper as a factor (1.0 = exact).
func (c Comparison) RatioError() float64 {
	if c.Paper == 0 {
		return 0
	}
	return c.Measured / c.Paper
}

// String renders one comparison line.
func (c Comparison) String() string {
	return fmt.Sprintf("%-48s %-18s paper=%-10.4g sim=%-10.4g ratio=%.2f",
		c.Artifact, c.Metric, c.Paper, c.Measured, c.RatioError())
}
