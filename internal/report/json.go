package report

// JSON wire forms for the report types. These are the stable public schema
// (documented in API.md as edisim.report/v1): field names and shapes are a
// compatibility surface, so they are explicit structs rather than derived
// from the in-memory types. Encoding uses only structs and slices — never
// maps — so re-encoding a decoded document reproduces it byte for byte.

// ValueJSON is one typed cell on the wire. Exactly one of Str/Num/Int is
// set, mirroring Value.Kind.
type ValueJSON struct {
	Str  *string  `json:"str,omitempty"`
	Num  *float64 `json:"num,omitempty"`
	Int  *int64   `json:"int,omitempty"`
	Unit string   `json:"unit,omitempty"`
}

// JSON converts a Value to its wire form.
func (v Value) JSON() ValueJSON {
	out := ValueJSON{Unit: v.Unit}
	switch v.Kind {
	case KindFloat:
		n := v.Num
		out.Num = &n
	case KindInt:
		n := v.Int
		out.Int = &n
	default:
		s := v.Str
		out.Str = &s
	}
	return out
}

// Value converts the wire form back to a typed cell.
func (v ValueJSON) Value() Value {
	switch {
	case v.Num != nil:
		return Value{Kind: KindFloat, Num: *v.Num, Unit: v.Unit}
	case v.Int != nil:
		return Value{Kind: KindInt, Int: *v.Int, Unit: v.Unit}
	case v.Str != nil:
		return Value{Kind: KindString, Str: *v.Str, Unit: v.Unit}
	default:
		return Value{Unit: v.Unit}
	}
}

// TableJSON is a table on the wire.
type TableJSON struct {
	Title   string        `json:"title"`
	Headers []string      `json:"headers"`
	Units   []string      `json:"units,omitempty"`
	Rows    [][]ValueJSON `json:"rows"`
}

// JSON converts the table to its wire form.
func (t *Table) JSON() TableJSON {
	out := TableJSON{Title: t.Title, Headers: t.Headers, Units: t.Units}
	out.Rows = make([][]ValueJSON, len(t.Rows))
	for ri, r := range t.Rows {
		row := make([]ValueJSON, len(r))
		for i, c := range r {
			row[i] = c.JSON()
		}
		out.Rows[ri] = row
	}
	return out
}

// Table converts the wire form back to a typed table.
func (t TableJSON) Table() *Table {
	out := &Table{Title: t.Title, Headers: t.Headers, Units: t.Units}
	out.Rows = make([][]Value, len(t.Rows))
	for ri, r := range t.Rows {
		row := make([]Value, len(r))
		for i, c := range r {
			row[i] = c.Value()
		}
		out.Rows[ri] = row
	}
	return out
}

// SeriesJSON is one figure curve on the wire.
type SeriesJSON struct {
	Label string    `json:"label"`
	Y     []float64 `json:"y"`
}

// FigureJSON is a figure on the wire. XLabel/YLabel carry the axes' units.
type FigureJSON struct {
	Name   string       `json:"name"`
	XLabel string       `json:"xlabel"`
	YLabel string       `json:"ylabel"`
	X      []float64    `json:"x"`
	Series []SeriesJSON `json:"series"`
}

// JSON converts the figure to its wire form.
func (f *Figure) JSON() FigureJSON {
	out := FigureJSON{Name: f.Name, XLabel: f.XLabel, YLabel: f.YLabel, X: f.X}
	for _, s := range f.Series {
		out.Series = append(out.Series, SeriesJSON{Label: s.Label, Y: s.Y})
	}
	return out
}

// Figure converts the wire form back to a figure.
func (f FigureJSON) Figure() *Figure {
	out := &Figure{Name: f.Name, XLabel: f.XLabel, YLabel: f.YLabel, X: f.X}
	for _, s := range f.Series {
		out.Series = append(out.Series, &Series{Label: s.Label, Y: s.Y})
	}
	return out
}

// ComparisonJSON is one paper-vs-measured pair on the wire. Ratio is
// derived (Measured/Paper, 0 when the paper value is 0) and included for
// consumers that do not want to recompute it.
type ComparisonJSON struct {
	Artifact string  `json:"artifact"`
	Metric   string  `json:"metric"`
	Paper    float64 `json:"paper"`
	Measured float64 `json:"measured"`
	Ratio    float64 `json:"ratio"`
}

// JSON converts the comparison to its wire form.
func (c Comparison) JSON() ComparisonJSON {
	return ComparisonJSON{
		Artifact: c.Artifact, Metric: c.Metric,
		Paper: c.Paper, Measured: c.Measured, Ratio: c.RatioError(),
	}
}

// Comparison converts the wire form back (the derived ratio is dropped).
func (c ComparisonJSON) Comparison() Comparison {
	return Comparison{Artifact: c.Artifact, Metric: c.Metric, Paper: c.Paper, Measured: c.Measured}
}
