package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Power", "Server", "Idle", "Busy")
	tb.AddRow("Micro", 1.40, 1.68)
	tb.AddRow("Dell", 52.0, 109.0)
	s := tb.String()
	for _, want := range []string{"Power", "Server", "Micro", "1.4", "109"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", 1.5)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("missing header: %q", csv)
	}
}

func TestCSVQuoteEscaping(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow(`he said "hi"`)
	if !strings.Contains(tb.CSV(), `"he said ""hi"""`) {
		t.Fatalf("quotes not escaped: %q", tb.CSV())
	}
}

func TestFigureSeries(t *testing.T) {
	f := NewFigure("Figure 4", "concurrency", "req/s", []float64{8, 16, 32})
	f.Add("24 micro", []float64{100, 200, 400})
	f.Add("2 Dell", []float64{110, 210, 410})
	tab := f.Table()
	if len(tab.Rows) != 3 || len(tab.Headers) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Headers))
	}
	if !strings.Contains(f.String(), "24 micro") {
		t.Fatal("series label missing")
	}
}

func TestFigureLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	f := NewFigure("f", "x", "y", []float64{1, 2})
	f.Add("s", []float64{1})
}

func TestComparisonRatio(t *testing.T) {
	c := Comparison{Artifact: "Table 8", Metric: "energy", Paper: 100, Measured: 120}
	if c.RatioError() != 1.2 {
		t.Fatalf("ratio %g", c.RatioError())
	}
	if (Comparison{Paper: 0, Measured: 5}).RatioError() != 0 {
		t.Fatal("zero-paper ratio should be 0")
	}
	if !strings.Contains(c.String(), "Table 8") {
		t.Fatal("comparison string missing artifact")
	}
}
