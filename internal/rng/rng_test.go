package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42).Derive("web")
	b := New(42).Derive("web")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name produced different streams")
		}
	}
}

func TestSubstreamIndependence(t *testing.T) {
	root := New(42)
	a := root.Derive("a")
	b := root.Derive("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams suspiciously correlated: %d/100 equal draws", same)
	}
}

func TestExpMean(t *testing.T) {
	s := New(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("exp mean %g, want ~3.0", mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	if New(1).Exp(0) != 0 {
		t.Fatal("Exp(0) should be 0")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("uniform draw %g outside [2,5)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %g", p)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.BoundedPareto(1, 100, 1.5)
		if v < 1 || v > 100.0001 {
			t.Fatalf("bounded pareto draw %g outside [1,100]", v)
		}
	}
}

func TestBoundedParetoInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range did not panic")
		}
	}()
	New(1).BoundedPareto(5, 2, 1)
}

func TestZipfSkew(t *testing.T) {
	s := New(17)
	z := s.Zipf(1.2, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[500] {
		t.Fatalf("zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		if s.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal draw not positive")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(23).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
