// Package rng provides deterministic, named random-number substreams for the
// simulator. Every stochastic component draws from its own substream derived
// from a single root seed, so experiments are bit-reproducible regardless of
// the order in which components happen to consume randomness.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random source with named substream derivation.
type Source struct {
	seed int64
	r    *rand.Rand
}

// New returns a Source rooted at seed.
func New(seed int64) *Source {
	return &Source{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Derive returns an independent substream identified by name. Deriving the
// same name from the same root always yields an identical stream.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	sub := s.seed ^ int64(h.Sum64())
	// Avoid the degenerate all-zero state.
	if sub == 0 {
		sub = 0x9E3779B97F4A7C15 & (1<<63 - 1)
	}
	return New(sub)
}

// Seed reports the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63n returns a uniform draw in [0,n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 { return s.r.Int63n(n) }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Uniform returns a uniform draw in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponential draw with the given mean. Mean 0 returns 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// LogNormal returns a draw from a log-normal with the given parameters of the
// underlying normal (mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// BoundedPareto returns a draw from a bounded Pareto distribution on
// [lo,hi] with shape alpha. It is used for heavy-tailed object sizes.
func (s *Source) BoundedPareto(lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("rng: invalid bounded pareto range")
	}
	u := s.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Zipf returns a generator of Zipf-distributed ranks in [0,n) with skew
// theta (> 1 is more skewed under math/rand's parameterization s).
func (s *Source) Zipf(theta float64, n uint64) *Zipf {
	if theta <= 1 {
		theta = 1.0001
	}
	return &Zipf{z: rand.NewZipf(s.r, theta, 1, n-1)}
}

// Zipf draws Zipf-distributed ranks.
type Zipf struct{ z *rand.Zipf }

// Next returns the next rank.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }
