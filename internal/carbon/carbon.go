// Package carbon is the facility-and-carbon layer between the node power
// models (internal/hw) and the price layer (internal/tco): PUE multipliers
// turn IT joules into wall joules, a regional grid-intensity map turns wall
// kWh into operational gCO2e, and embodied-carbon amortization spreads a
// server's manufacturing footprint over its service life. The shape follows
// the cloud-carbon-exporter / Cloud Carbon Footprint methodology (SNIPPETS
// Snippet 1); intensity figures are Ember-style annual grid averages,
// rounded — they parameterize comparisons, not audits.
package carbon

import (
	"fmt"
	"strings"

	"edisim/internal/units"
)

// DefaultPUE is the datacenter power-usage-effectiveness multiplier applied
// when a config does not override it: hyperscaler fleets average ≈1.15
// (Snippet 1's sources).
const DefaultPUE = 1.15

// GramsPerKWh converts energy to mass of CO2-equivalent.
type GramsPerKWh = float64

// Grid is one region's electricity profile: its lookup key (the region
// grammar accepted by configs and CLIs), a display label, and the annual
// average carbon intensity of its grid mix.
type Grid struct {
	Region string
	Label  string
	Grams  GramsPerKWh // gCO2e per kWh drawn from the wall
}

// regions is the ordered regional grid map. Keys follow the familiar
// cloud-region grammar; intensities are rounded annual grid averages —
// hydro/nuclear-heavy eu-north at one extreme, coal-heavy ap-south at the
// other, with "global" as the world average.
var regions = []Grid{
	{"us-east", "US East (Virginia)", 379},
	{"us-west", "US West (Oregon)", 230},
	{"eu-west", "EU West (Ireland)", 316},
	{"eu-north", "EU North (Stockholm)", 29},
	{"eu-central", "EU Central (Frankfurt)", 381},
	{"ap-south", "AP South (Mumbai)", 713},
	{"ap-southeast", "AP Southeast (Singapore)", 408},
	{"global", "World average", 480},
}

// Regions returns the grid map in registration order.
func Regions() []Grid {
	out := make([]Grid, len(regions))
	copy(out, regions)
	return out
}

// RegionNames lists the accepted region keys (for CLI errors and docs).
func RegionNames() []string {
	out := make([]string, len(regions))
	for i, g := range regions {
		out[i] = g.Region
	}
	return out
}

// Lookup resolves a region key, case-insensitively and whitespace-tolerantly.
func Lookup(region string) (Grid, bool) {
	key := strings.ToLower(strings.TrimSpace(region))
	for _, g := range regions {
		if g.Region == key {
			return g, true
		}
	}
	return Grid{}, false
}

// MustLookup is Lookup for keys known valid by construction; it panics on
// unknown regions.
func MustLookup(region string) Grid {
	g, ok := Lookup(region)
	if !ok {
		panic(fmt.Sprintf("carbon: unknown region %q (want one of %s)",
			region, strings.Join(RegionNames(), ", ")))
	}
	return g
}

// Footprint is a carbon accounting split the way datacenter LCAs split it:
// operational (electricity × grid intensity) and embodied (manufacturing,
// amortized over service life). Grams of CO2-equivalent.
type Footprint struct {
	Operational float64
	Embodied    float64
}

// Total reports operational plus embodied grams.
func (f Footprint) Total() float64 { return f.Operational + f.Embodied }

// Operational converts metered IT-side joules into operational gCO2e: the
// PUE multiplier adds the facility's cooling/distribution overhead, the
// grid's intensity converts wall kWh to grams. pue values below 1 (including
// the zero value) mean "no facility overhead".
func Operational(energy units.Joules, pue float64, g Grid) float64 {
	if pue < 1 {
		pue = 1
	}
	kwh := float64(energy) / 3.6e6
	return kwh * pue * g.Grams
}

// Embodied amortizes the manufacturing footprint of nodes servers over the
// profile's service life and reports the share attributable to a window of
// seconds. A zero/negative life or footprint contributes nothing.
func Embodied(kgCO2e, lifeYears float64, nodes int, seconds float64) float64 {
	if kgCO2e <= 0 || lifeYears <= 0 || nodes <= 0 || seconds <= 0 {
		return 0
	}
	lifeSeconds := lifeYears * 365 * 24 * 3600
	return kgCO2e * 1000 * float64(nodes) * seconds / lifeSeconds
}
