package carbon

import (
	"math"
	"testing"

	"edisim/internal/units"
)

func TestRegionsWellFormed(t *testing.T) {
	if len(Regions()) < 4 {
		t.Fatalf("grid map has %d regions, want several", len(Regions()))
	}
	seen := map[string]bool{}
	for _, g := range Regions() {
		if g.Region == "" || g.Label == "" || g.Grams <= 0 {
			t.Errorf("malformed grid entry %+v", g)
		}
		if seen[g.Region] {
			t.Errorf("duplicate region %q", g.Region)
		}
		seen[g.Region] = true
	}
	if _, ok := Lookup("global"); !ok {
		t.Error("the world-average region must exist")
	}
	// Lookup is case/whitespace tolerant; RegionNames matches the map.
	if g, ok := Lookup("  EU-North "); !ok || g.Region != "eu-north" {
		t.Errorf("tolerant lookup failed: %+v, %v", g, ok)
	}
	if _, ok := Lookup("mars-1"); ok {
		t.Error("bogus region resolved")
	}
	if len(RegionNames()) != len(Regions()) {
		t.Error("RegionNames out of sync")
	}
}

func TestOperational(t *testing.T) {
	g := Grid{Region: "test", Label: "test", Grams: 500}
	// 3.6 MJ = 1 kWh; at PUE 1.15 and 500 g/kWh → 575 g.
	if got := Operational(units.Joules(3.6e6), 1.15, g); math.Abs(got-575) > 1e-9 {
		t.Errorf("Operational = %v g, want 575 g", got)
	}
	// Zero and sub-1 PUE mean "no facility overhead", not a discount.
	if got := Operational(units.Joules(3.6e6), 0, g); math.Abs(got-500) > 1e-9 {
		t.Errorf("Operational at PUE 0 = %v g, want 500 g", got)
	}
	if Operational(0, 1.15, g) != 0 {
		t.Error("zero energy must be zero grams")
	}
}

func TestEmbodied(t *testing.T) {
	// 1000 kg over 3 years: one server for one year carries a third.
	year := 365.0 * 24 * 3600
	if got, want := Embodied(1000, 3, 1, year), 1000.0*1000/3; math.Abs(got-want) > 1e-6 {
		t.Errorf("Embodied = %v g, want %v g", got, want)
	}
	// Linear in fleet size and window length.
	if got, want := Embodied(1000, 3, 10, year), 10*Embodied(1000, 3, 1, year); math.Abs(got-want) > 1e-6*want {
		t.Errorf("not linear in nodes: %v vs %v", got, want)
	}
	for _, zero := range []float64{Embodied(0, 3, 1, year), Embodied(1000, 0, 1, year),
		Embodied(1000, 3, 0, year), Embodied(1000, 3, 1, 0)} {
		if zero != 0 {
			t.Error("degenerate inputs must contribute nothing")
		}
	}
}

func TestFootprintTotal(t *testing.T) {
	f := Footprint{Operational: 2, Embodied: 3}
	if f.Total() != 5 {
		t.Errorf("Total = %v, want 5", f.Total())
	}
}
