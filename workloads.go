package edisim

import (
	"fmt"
	"math"

	"edisim/internal/carbon"
	"edisim/internal/cluster"
	"edisim/internal/core"
	"edisim/internal/faults"
	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/report"
	"edisim/internal/tco"
	"edisim/internal/web"
)

// --- Paper experiments -----------------------------------------------------

// PaperExperiments runs experiments from the paper registry: every table
// and figure of the source paper, plus the opt-in cross-platform matrices.
// Each experiment becomes its own Artifact.
type PaperExperiments struct {
	// IDs selects experiments by registry ID, run in registration order
	// (see ExperimentIDs). An unknown ID is an error naming the valid set.
	// Empty selects the full default reproduction: every experiment that
	// is not opt-in.
	IDs []string
	// IncludeOptIn adds the opt-in experiments (cross-platform matrices
	// beyond the paper's artifact set) to an empty-IDs selection.
	IncludeOptIn bool
}

// ExperimentIDs lists the registered paper experiment IDs, sorted.
func ExperimentIDs() []string { return core.IDs() }

func (p *PaperExperiments) expand(core.Config) ([]unit, error) {
	// Every selected ID must exist: a typo silently dropping an experiment
	// poisons comparisons downstream.
	wanted := map[string]bool{}
	for _, id := range p.IDs {
		if _, ok := core.Lookup(id); !ok {
			return nil, unknownNameError("experiment", id, core.IDs())
		}
		wanted[id] = true
	}
	var units []unit
	for _, e := range core.Experiments() {
		if len(wanted) > 0 {
			if !wanted[e.ID] {
				continue
			}
		} else if e.OptIn && !p.IncludeOptIn {
			continue
		}
		run := e.Run
		units = append(units, unit{
			id: e.ID, title: e.Title, section: e.Section,
			run: func(cfg core.Config) (*core.Outcome, error) { return run(cfg), nil },
		})
	}
	return units, nil
}

// --- Web sweep -------------------------------------------------------------

// TierSpec sizes one middle-tier role on a platform.
type TierSpec struct {
	Platform PlatformRef
	Nodes    int
}

// WebSweep sweeps the paper's httperf workload over a concurrency axis on
// a web tier and a cache tier that may sit on different platforms — the
// heterogeneous-testbed scenario the platform catalog exists for (e.g. a
// Pi3 web tier in front of a Xeon cache tier).
type WebSweep struct {
	// ID names the artifact (default "web_sweep"). Two web sweeps in one
	// scenario need distinct IDs: the ID namespaces per-point seeds.
	ID string

	// Web is the web-server tier; its platform defaults to the baseline
	// micro server and its size to the platform's fleet web count.
	Web TierSpec
	// Cache is the cache tier; its platform defaults to the web tier's and
	// its size to that platform's fleet cache count.
	Cache TierSpec

	// DBNodes and Clients size the shared infrastructure tier
	// (defaults: the paper's 2 database servers and 8 load generators).
	DBNodes, Clients int

	// Concurrencies is the swept conn/s axis (default: the paper's 8…2048,
	// trimmed in Quick runs).
	Concurrencies []float64
	// ImageFrac is the image-query probability (paper: 0, 0.06, 0.10, 0.20).
	ImageFrac float64
	// CacheHit is the warmed cache hit ratio; 0 means the paper's 0.93,
	// ColdCache means no warm entries.
	CacheHit float64
	// Duration is the simulated seconds per point (default 15, 4 in Quick).
	Duration float64
}

// ColdCache is the CacheHit sentinel for a fully cold cache (the field's
// zero value means "use the paper's 0.93 default").
const ColdCache = web.ColdCache

// tierSetup is a resolved middle-tier shape: platforms, sizes and the
// shared infrastructure tier, with every default applied and every cap
// checked. WebSweep and OverloadStudy resolve through it identically.
type tierSetup struct {
	webPlat, cachePlat *hw.Platform
	nWeb, nCache       int
	db, clients        int
}

// resolveTiers applies the shared tier defaults: baseline-micro web tier at
// its fleet size, cache tier on the web platform at its fleet size, the
// paper's 2 DB servers and 8 clients.
func resolveTiers(id string, webTier, cacheTier TierSpec, dbNodes, clients int) (tierSetup, error) {
	var ts tierSetup
	webPlat, err := webTier.Platform.resolve()
	if err != nil {
		return ts, err
	}
	if webPlat == nil {
		webPlat, _ = hw.BaselinePair()
	}
	cachePlat, err := cacheTier.Platform.resolve()
	if err != nil {
		return ts, err
	}
	if cachePlat == nil {
		cachePlat = webPlat
	}
	nWeb, nCache := webTier.Nodes, cacheTier.Nodes
	if nWeb == 0 {
		nWeb = webPlat.Fleet.Web
	}
	if nCache == 0 {
		nCache = cachePlat.Fleet.Cache
	}
	if nWeb <= 0 || nCache <= 0 {
		return ts, fmt.Errorf("edisim: %s: web and cache tiers need at least one node (got %d web, %d cache)", id, nWeb, nCache)
	}
	// Same-platform tiers share one node group; split tiers get one each.
	grp := max(nWeb, nCache)
	if webPlat == cachePlat {
		grp = nWeb + nCache
	}
	if grp > cluster.MaxGroupNodes {
		return ts, fmt.Errorf("edisim: %s: tier group of %d nodes exceeds the %d-node group cap", id, grp, cluster.MaxGroupNodes)
	}
	if dbNodes == 0 {
		dbNodes = 2
	}
	if clients == 0 {
		clients = 8
	}
	if dbNodes < 0 || clients < 0 {
		return ts, fmt.Errorf("edisim: %s: DBNodes and Clients must be positive (got %d, %d)", id, dbNodes, clients)
	}
	return tierSetup{webPlat: webPlat, cachePlat: cachePlat, nWeb: nWeb, nCache: nCache, db: dbNodes, clients: clients}, nil
}

// clusterConfig builds the testbed config for the resolved tiers.
func (ts tierSetup) clusterConfig() cluster.Config {
	return tierClusterConfig(ts.webPlat, ts.nWeb, ts.cachePlat, ts.nCache, ts.db, ts.clients)
}

func (ws *WebSweep) expand(cfg core.Config) ([]unit, error) {
	id := ws.ID
	if id == "" {
		id = "web_sweep"
	}
	ts, err := resolveTiers(id, ws.Web, ws.Cache, ws.DBNodes, ws.Clients)
	if err != nil {
		return nil, err
	}
	webPlat, cachePlat, nWeb, nCache := ts.webPlat, ts.cachePlat, ts.nWeb, ts.nCache
	concs := ws.Concurrencies
	if len(concs) == 0 {
		if cfg.Quick {
			concs = []float64{64, 512, 1024}
		} else {
			concs = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
		}
	}

	title := fmt.Sprintf("Web sweep: %d %s web + %d %s cache", nWeb, webPlat.Label, nCache, cachePlat.Label)
	label := fmt.Sprintf("%d %s / %d %s", nWeb, webPlat.Label, nCache, cachePlat.Label)

	run := func(cfg core.Config) (*core.Outcome, error) {
		duration := ws.Duration
		if duration == 0 {
			duration = 15
			if cfg.Quick {
				duration = 4
			}
		}
		s := core.Sweep[float64, web.Result]{Name: id, Points: concs}
		s.Point = func(_ int, conc float64, seed int64) web.Result {
			rc := web.RunConfig{
				Concurrency: conc,
				ImageFrac:   ws.ImageFrac,
				CacheHit:    ws.CacheHit,
				Duration:    duration,
			}
			cc := ts.clusterConfig()
			cc.Energy = cfg.Energy
			tb := cluster.New(cc)
			dep := web.NewTieredDeployment(tb, webPlat, nWeb, cachePlat, nCache, seed)
			dep.WarmFor(rc)
			return dep.Run(rc)
		}
		results := s.Run(cfg)

		o := &core.Outcome{}
		t := report.NewTable(title,
			"conn/s", "req/s", "delay ms", "err rate", "power W", "web cpu %", "cache cpu %").
			WithUnits("conn/s", "req/s", "ms", "", "W", "%", "%")
		var tput, delay, pow []float64
		for i, r := range results {
			t.AddRow(
				report.Num(concs[i], "conn/s"),
				report.Num(r.Throughput, "req/s"),
				report.Num(r.MeanDelay*1e3, "ms"),
				report.Num(r.ErrorRate, ""),
				report.Num(float64(r.MeanPower), "W"),
				report.Num(r.WebCPU*100, "%"),
				report.Num(r.CacheCPU*100, "%"),
			)
			tput = append(tput, r.Throughput)
			delay = append(delay, r.MeanDelay*1e3)
			pow = append(pow, float64(r.MeanPower))
		}
		o.Tables = append(o.Tables, t)
		ft := report.NewFigure(title+" — throughput", "conn/s", "req/s", concs)
		ft.Add(label, tput)
		fd := report.NewFigure(title+" — response delay", "conn/s", "ms", concs)
		fd.Add(label, delay)
		fp := report.NewFigure(title+" — cluster power", "conn/s", "W", concs)
		fp.Add(label, pow)
		o.Figures = append(o.Figures, ft, fd, fp)
		return o, nil
	}
	return []unit{{id: id, title: title, section: "scenario", run: run}}, nil
}

// tierClusterConfig builds the cluster config for a (web, cache) tier pair:
// one node group when the platforms coincide (the paper's shape), two
// groups otherwise.
func tierClusterConfig(webPlat *hw.Platform, nWeb int, cachePlat *hw.Platform, nCache, db, clients int) cluster.Config {
	groups := []cluster.GroupConfig{{Platform: webPlat, Nodes: nWeb + nCache}}
	if cachePlat != webPlat {
		groups = []cluster.GroupConfig{
			{Platform: webPlat, Nodes: nWeb},
			{Platform: cachePlat, Nodes: nCache},
		}
	}
	return cluster.Config{Groups: groups, DBNodes: db, Clients: clients}
}

// --- Overload study ----------------------------------------------------------

// OverloadStudy drives a middle tier with an open-loop LoadProfile — the
// traffic the paper's closed-loop httperf sessions cannot produce, where
// arrivals keep coming whether or not the fleet keeps up — and measures how
// it degrades: goodput vs offered load, shed and brownout rates, bounded
// tail quantiles from the streaming digest, retry-budget accounting and the
// SLO controller's window-by-window verdicts. Scenario.Faults, when set, is
// injected into the run (roles "web" and "cache"), so a flash crowd and a
// mid-spike crash compose into one drill.
type OverloadStudy struct {
	// ID names the artifact (default "overload_study") and namespaces the
	// run's seed: two studies in one scenario need distinct IDs.
	ID string

	// Web and Cache size the middle tier exactly like WebSweep: the web
	// platform defaults to the baseline micro server at its fleet size, the
	// cache tier to the web platform at its fleet size.
	Web   TierSpec
	Cache TierSpec
	// DBNodes and Clients size the shared infrastructure tier (defaults:
	// the paper's 2 database servers and 8 load generators).
	DBNodes, Clients int

	// Profile is the open-loop arrival profile (required): SteadyLoad,
	// SpikeLoad, DiurnalLoad, BurstyLoad or ParseLoadProfile's result.
	Profile LoadProfile
	// Duration is the simulated seconds (default 15, 4 in Quick). Profile
	// times are absolute into the run.
	Duration float64
	// ImageFrac and CacheHit mirror WebSweep's workload knobs.
	ImageFrac float64
	CacheHit  float64

	// RequestTimeout is the client timeout in seconds enabling
	// timeout/retry/failover recovery (default 0.5).
	RequestTimeout float64
	// RetryBudget caps client retries at this fraction of first attempts
	// (plus a small burst); 0 leaves retries unbudgeted.
	RetryBudget float64
	// Shed is the server-side admission-control policy; the zero value
	// accepts everything (the paper's behavior).
	Shed ShedPolicy
	// SLO, when non-nil, arms the reactive controller (reserve activation,
	// brownout) and adds the window-by-window time-series figure. The
	// study chains its own Observer in front of any caller-provided one.
	SLO *SLO
}

func (ov *OverloadStudy) expand(cfg core.Config) ([]unit, error) {
	id := ov.ID
	if id == "" {
		id = "overload_study"
	}
	ts, err := resolveTiers(id, ov.Web, ov.Cache, ov.DBNodes, ov.Clients)
	if err != nil {
		return nil, err
	}
	if ov.Profile == nil {
		return nil, fmt.Errorf("edisim: %s: an overload study needs a load Profile (e.g. SteadyLoad{Rate: 400})", id)
	}
	if err := ov.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("edisim: %s: %w", id, err)
	}
	if err := ov.Shed.Validate(); err != nil {
		return nil, fmt.Errorf("edisim: %s: %w", id, err)
	}
	if err := ov.SLO.Validate(); err != nil {
		return nil, fmt.Errorf("edisim: %s: %w", id, err)
	}

	title := fmt.Sprintf("Overload study: %v on %d %s web + %d %s cache",
		ov.Profile, ts.nWeb, ts.webPlat.Label, ts.nCache, ts.cachePlat.Label)

	run := func(cfg core.Config) (*core.Outcome, error) {
		duration := ov.Duration
		if duration == 0 {
			duration = 15
			if cfg.Quick {
				duration = 4
			}
		}
		timeout := ov.RequestTimeout
		if timeout == 0 {
			timeout = 0.5
		}
		rc := web.RunConfig{
			Profile:        ov.Profile,
			Duration:       duration,
			ImageFrac:      ov.ImageFrac,
			CacheHit:       ov.CacheHit,
			RequestTimeout: timeout,
			RetryBudget:    ov.RetryBudget,
			Shed:           ov.Shed,
		}
		// The controller time series backs the figure; a caller-provided
		// Observer still sees every window.
		var wins []SLOWindow
		if ov.SLO != nil {
			s := *ov.SLO
			chain := s.Observer
			s.Observer = func(w SLOWindow) {
				wins = append(wins, w)
				if chain != nil {
					chain(w)
				}
			}
			rc.SLO = &s
		}

		seed := cfg.PointSeed(id, 0)
		cc := ts.clusterConfig()
		cc.Energy = cfg.Energy
		tb := cluster.New(cc)
		dep := web.NewTieredDeployment(tb, ts.webPlat, ts.nWeb, ts.cachePlat, ts.nCache, seed)
		dep.WarmFor(rc)
		if cfg.Faults != nil {
			roster := map[string][]faults.Target{}
			for _, w := range dep.Web {
				roster["web"] = append(roster["web"], faults.Target{Node: w.Node, Fab: dep.Fab})
			}
			for _, c := range dep.Cache {
				roster["cache"] = append(roster["cache"], faults.Target{Node: c.Node, Fab: dep.Fab})
			}
			plan := cfg.Faults.Filter("web", "cache")
			if !plan.Empty() {
				faults.Schedule(dep.Eng, plan, seed, roster)
			}
		}
		res := dep.Run(rc)

		// Rates are over the measurement window (Duration minus warmup).
		window := duration * 0.75
		o := &core.Outcome{}
		t := report.NewTable(title,
			"offered conn/s", "goodput req/s", "shed /s", "degraded /s", "p50 ms", "p99 ms", "p999 ms", "err rate", "retries", "denied", "power W").
			WithUnits("conn/s", "req/s", "/s", "/s", "ms", "ms", "ms", "", "", "", "W")
		t.AddRow(
			report.Num(float64(res.Offered)/window, "conn/s"),
			report.Num(res.Throughput, "req/s"),
			report.Num(float64(res.Shed)/window, "/s"),
			report.Num(float64(res.Degraded)/window, "/s"),
			report.Num(res.Latency.Quantile(0.5)*1e3, "ms"),
			report.Num(res.Latency.Quantile(0.99)*1e3, "ms"),
			report.Num(res.Latency.Quantile(0.999)*1e3, "ms"),
			report.Num(res.ErrorRate, ""),
			report.Count(res.Retries, ""),
			report.Count(res.RetryDenied, ""),
			report.Num(float64(res.MeanPower), "W"),
		)
		o.Tables = append(o.Tables, t)
		if len(wins) > 0 {
			x := make([]float64, len(wins))
			served := make([]float64, len(wins))
			shed := make([]float64, len(wins))
			active := make([]float64, len(wins))
			for i, w := range wins {
				x[i] = w.T
				served[i] = float64(w.Served) / rc.SLO.Window
				shed[i] = float64(w.Shed) / rc.SLO.Window
				active[i] = float64(w.Active)
			}
			f := report.NewFigure(title+" — SLO controller windows", "t (s)", "per second / servers", x)
			f.Add("served ops/s", served)
			f.Add("shed/s", shed)
			f.Add("active web servers", active)
			o.Figures = append(o.Figures, f)
			o.Notes = append(o.Notes, fmt.Sprintf(
				"SLO: p%g of window latency <= %gs, availability >= %g; %d window(s) burned, brownout engaged for %.1fs, routing rotation peaked at %d servers",
				100*effPercentile(rc.SLO.Percentile), rc.SLO.Latency, rc.SLO.Availability,
				res.SLOBreaches, res.BrownoutSecs, res.ActivePeak))
		}
		return o, nil
	}
	return []unit{{id: id, title: title, section: "scenario", run: run}}, nil
}

// effPercentile resolves the SLO percentile default for display.
func effPercentile(p float64) float64 {
	if p == 0 {
		return 0.99
	}
	return p
}

// --- MapReduce job ---------------------------------------------------------

// MapReduceJob simulates one Hadoop job end to end on a platform's cluster,
// optionally with the 1 Hz utilization/power trace the paper plots in
// Figures 12–17 (the YARN container lifecycle, HDFS placement and network
// shuffle all run in the simulation). SlaveGroups runs the job on a
// mixed-platform slave set — the heterogeneous cluster the paper's hybrid
// (Dell master over Edison slaves) stops short of.
type MapReduceJob struct {
	// ID names the artifact (default "mapreduce_<job>").
	ID string
	// Job is one of JobNames(): wordcount, wordcount2, logcount,
	// logcount2, pi, terasort.
	Job string
	// Platform defaults to the baseline micro server.
	Platform PlatformRef
	// Slaves defaults to the platform's fleet slave count.
	Slaves int
	// SlaveGroups, when set, replaces Platform/Slaves with a mixed-platform
	// slave set: each entry is one platform's share of the workers, with
	// YARN capacities, container startup and task rates resolved per
	// platform. The first group is primary — cluster-global job tuning
	// (block size, replication, container sizes, reducer scaling) follows
	// it. Every entry needs an explicit platform and a positive node count.
	SlaveGroups []TierSpec
	// Trace adds the utilization/power trace figure.
	Trace bool
}

// expandGroups resolves SlaveGroups into the jobs-layer slave set,
// validating each entry (explicit platform, positive nodes, no duplicate
// platforms) and the per-group node caps.
func (mj *MapReduceJob) expandGroups(job string) ([]jobs.SlaveGroup, error) {
	var groups []jobs.SlaveGroup
	seen := map[*hw.Platform]bool{}
	for i, ts := range mj.SlaveGroups {
		p, err := ts.Platform.resolve()
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("edisim: mapreduce %s: slave group %d needs an explicit platform", job, i)
		}
		if ts.Nodes <= 0 {
			return nil, fmt.Errorf("edisim: mapreduce %s: slave group %d (%s) needs a positive node count (got %d)", job, i, p.Label, ts.Nodes)
		}
		if seen[p] {
			return nil, fmt.Errorf("edisim: mapreduce %s: duplicate slave group for %s", job, p.Label)
		}
		seen[p] = true
		groups = append(groups, jobs.SlaveGroup{Platform: p, Nodes: ts.Nodes})
	}
	// Per-group cluster caps, sized against the builder's own master
	// placement rule (jobs.MasterGroupIndex): the hosting group deploys
	// one extra node.
	selfIdx := jobs.MasterGroupIndex(groups)
	for i, g := range groups {
		n := g.Nodes
		if i == selfIdx {
			n++
		}
		if n > cluster.MaxGroupNodes {
			return nil, fmt.Errorf("edisim: mapreduce %s: %s group of %d nodes exceeds the %d-node group cap",
				job, g.Platform.Label, g.Nodes, cluster.MaxGroupNodes)
		}
	}
	return groups, nil
}

// groupsLabel renders a mixed slave set for titles: "3 Edison + 1 Dell".
func groupsLabel(groups []jobs.SlaveGroup) string {
	s := ""
	for i, g := range groups {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%d %s", g.Nodes, g.Platform.Label)
	}
	return s
}

func (mj *MapReduceJob) expand(core.Config) ([]unit, error) {
	job := mj.Job
	found := false
	for _, n := range jobs.Names() {
		if n == job {
			found = true
		}
	}
	if !found {
		return nil, unknownNameError("job", job, jobs.Names())
	}

	var groups []jobs.SlaveGroup
	if len(mj.SlaveGroups) > 0 {
		var err error
		if groups, err = mj.expandGroups(job); err != nil {
			return nil, err
		}
	} else {
		p, err := mj.Platform.resolve()
		if err != nil {
			return nil, err
		}
		if p == nil {
			p, _ = hw.BaselinePair()
		}
		slaves := mj.Slaves
		if slaves == 0 {
			slaves = p.Fleet.Slaves
		}
		if slaves <= 0 {
			return nil, fmt.Errorf("edisim: mapreduce %s: need at least one slave", job)
		}
		// A self-hosted master shares the slaves' group (slaves+1 nodes);
		// an external master (Edison/Pi-class hybrids) lives in its own
		// group.
		group := slaves
		if p.Hadoop.MasterPlatform == "" {
			group = slaves + 1
		}
		if group > cluster.MaxGroupNodes {
			detail := fmt.Sprintf("%d slaves", slaves)
			if group != slaves {
				detail += " plus the self-hosted master"
			}
			return nil, fmt.Errorf("edisim: mapreduce %s: %s exceeds the %d-node group cap", job, detail, cluster.MaxGroupNodes)
		}
		groups = []jobs.SlaveGroup{{Platform: p, Nodes: slaves}}
	}

	id := mj.ID
	if id == "" {
		id = "mapreduce_" + job
	}
	title := fmt.Sprintf("%s on %s slaves", job, groupsLabel(groups))
	platLabel := groups[0].Platform.Label
	if len(groups) > 1 {
		platLabel = "mixed"
	}
	totalSlaves := 0
	for _, g := range groups {
		totalSlaves += g.Nodes
	}

	run := func(cfg core.Config) (*core.Outcome, error) {
		r, err := jobs.RunGroupsEnergy(job, groups, cfg.Seed, cfg.Energy)
		if err != nil {
			return nil, err
		}
		o := &core.Outcome{}
		t := report.NewTable(title,
			"job", "platform", "slaves", "time s", "energy J", "maps", "reduces", "local %").
			WithUnits("", "", "nodes", "s", "J", "tasks", "tasks", "%")
		t.AddRow(
			job, platLabel,
			report.Count(int64(totalSlaves), "nodes"),
			report.Num(r.Duration, "s"),
			report.Num(float64(r.Energy), "J"),
			report.Count(int64(r.MapTasks), "tasks"),
			report.Count(int64(r.ReduceTasks), "tasks"),
			report.Num(100*r.LocalityFraction(), "%"),
		)
		o.Tables = append(o.Tables, t)
		if mj.Trace {
			o.Figures = append(o.Figures, core.TraceFigure(title+" — 1 Hz trace", r))
		}
		return o, nil
	}
	return []unit{{id: id, title: title, section: "scenario", run: run}}, nil
}

// JobNames lists the simulatable Hadoop workloads.
func JobNames() []string { return jobs.Names() }

// --- TCO study -------------------------------------------------------------

// TCOStudy prices platform fleets with the paper's 3-year
// total-cost-of-ownership model (Section 6, Equation 1). Fleets are sized
// explicitly (Nodes), from the catalog (the default), or to an equal
// spending cap (Budget) — the paper's comparable-cost framing.
type TCOStudy struct {
	// ID names the artifact (default "tco_study").
	ID string
	// Platforms to price side by side (default: the whole catalog).
	Platforms []PlatformRef
	// Nodes matches Platforms entry for entry (default: each platform's
	// fleet slave count). Every count must be positive. Mutually exclusive
	// with Budget.
	Nodes []int
	// Budget, when positive, sizes every platform's fleet to the largest
	// node count whose 3-year TCO fits the budget (tco.SizeForBudget)
	// instead of using Nodes or the catalog fleets. A platform whose
	// single server exceeds the budget prices as a zero-node row.
	Budget float64
	// Utilization in [0,1] (default 0.5). The zero value means "use the
	// default"; pass ZeroUtilization for a genuinely idle fleet.
	Utilization float64
	// Region prices the fleet at a grid region's electricity tariff instead
	// of the paper's Table 9 US average, with the default facility PUE and
	// the region's carbon intensity applied (see RegionNames). The table
	// gains tCO2e and carbon-cost columns.
	Region string
	// CarbonPricePerTonne prices operational carbon in USD per tCO2e; it
	// implies carbon accounting even without Region (the world-average
	// grid is used then).
	CarbonPricePerTonne float64
	// PUE overrides the facility power overhead multiplier (must be >= 1);
	// 0 keeps the default — DefaultPUE when carbon accounting is on, no
	// overhead otherwise (the paper's Equation 1).
	PUE float64
}

// ZeroUtilization is the TCOStudy.Utilization sentinel for pricing a fully
// idle fleet (equipment plus idle electricity only) — the field's zero
// value selects the 50% default instead.
const ZeroUtilization = -1

func (ts *TCOStudy) expand(core.Config) ([]unit, error) {
	id := ts.ID
	if id == "" {
		id = "tco_study"
	}
	var plats []*hw.Platform
	for _, r := range ts.Platforms {
		p, err := r.resolve()
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("edisim: %s: empty platform ref", id)
		}
		plats = append(plats, p)
	}
	if len(plats) == 0 {
		plats = hw.Platforms()
	}
	if ts.Nodes != nil && len(ts.Nodes) != len(plats) {
		return nil, fmt.Errorf("edisim: %s: %d node counts for %d platforms", id, len(ts.Nodes), len(plats))
	}
	if ts.Budget < 0 || math.IsNaN(ts.Budget) || math.IsInf(ts.Budget, 0) {
		return nil, fmt.Errorf("edisim: %s: budget $%v must be positive and finite", id, ts.Budget)
	}
	if ts.Budget > 0 && ts.Nodes != nil {
		return nil, fmt.Errorf("edisim: %s: Budget and Nodes are mutually exclusive", id)
	}
	for i, n := range ts.Nodes {
		if n <= 0 {
			return nil, fmt.Errorf("edisim: %s: bad node count %d for %s", id, n, plats[i].Label)
		}
	}
	util := ts.Utilization
	if util == 0 {
		util = 0.5
	}
	if util < 0 { // ZeroUtilization sentinel (any negative value)
		util = 0
	}
	if util > 1 {
		return nil, fmt.Errorf("edisim: %s: utilization %v outside [0,1]", id, util)
	}
	if math.IsNaN(ts.CarbonPricePerTonne) || ts.CarbonPricePerTonne < 0 {
		return nil, fmt.Errorf("edisim: %s: negative carbon price %v $/tCO2e", id, ts.CarbonPricePerTonne)
	}
	// Carbon accounting is on when a region or a carbon price is set; a bare
	// carbon price attributes to the world-average grid.
	region := ts.Region
	carbonOn := region != "" || ts.CarbonPricePerTonne > 0
	if carbonOn && region == "" {
		region = "global"
	}
	if region != "" {
		if _, ok := carbon.Lookup(region); !ok {
			return nil, unknownNameError("region", region, carbon.RegionNames())
		}
	}
	title := fmt.Sprintf("3-year TCO at %.0f%% utilization", util*100)
	if ts.Budget > 0 {
		title = fmt.Sprintf("3-year TCO at %.0f%% utilization, fleets sized to $%.0f", util*100, ts.Budget)
	}
	if carbonOn {
		title += fmt.Sprintf(" (%s grid)", region)
	}

	run := func(cfg core.Config) (*core.Outcome, error) {
		o := &core.Outcome{}
		cols := []string{"platform", "nodes", "equipment $", "electricity $", "total $", "$ per node"}
		colUnits := []string{"", "nodes", "$", "$", "$", "$"}
		if carbonOn {
			cols = append(cols, "tCO2e (3y)", "carbon $")
			colUnits = append(colUnits, "t", "$")
		}
		t := report.NewTable(title, cols...).WithUnits(colUnits...)
		for i, p := range plats {
			n := p.Fleet.Slaves
			if ts.Nodes != nil {
				n = ts.Nodes[i]
			}
			if ts.Budget > 0 {
				var err error
				if n, err = tco.SizeForBudget(p, ts.Budget, util); err != nil {
					return nil, fmt.Errorf("edisim: %s: %w", id, err)
				}
				if n == 0 {
					row := []any{p.Label, report.Count(0, "nodes"),
						report.Num(0, "$"), report.Num(0, "$"), report.Num(0, "$"), report.Num(0, "$")}
					if carbonOn {
						row = append(row, report.Num(0, "t"), report.Num(0, "$"))
					}
					t.AddRow(row...)
					o.Notes = append(o.Notes, fmt.Sprintf(
						"%s: one server already exceeds the $%.0f budget", p.Label, ts.Budget))
					continue
				}
			}
			if n <= 0 {
				return nil, fmt.Errorf("edisim: %s: bad node count %d for %s", id, n, p.Label)
			}
			in := tco.ForPlatformModel(p, n, util, cfg.Energy)
			if carbonOn {
				var err error
				if in, err = tco.ForPlatformInRegion(p, n, util, cfg.Energy, region, ts.CarbonPricePerTonne); err != nil {
					return nil, fmt.Errorf("edisim: %s: %w", id, err)
				}
			}
			if ts.PUE != 0 {
				in.PUE = ts.PUE // validated by Compute (must be >= 1)
			}
			r, err := tco.Compute(in)
			if err != nil {
				return nil, fmt.Errorf("edisim: %s: %w", id, err)
			}
			row := []any{
				p.Label,
				report.Count(int64(n), "nodes"),
				report.Num(r.Equipment, "$"),
				report.Num(r.Electricity, "$"),
				report.Num(r.Total(), "$"),
				report.Num(r.Total()/float64(n), "$"),
			}
			if carbonOn {
				row = append(row, report.Num(r.CarbonGrams/1e6, "t"), report.Num(r.Carbon, "$"))
			}
			t.AddRow(row...)
		}
		o.Tables = append(o.Tables, t)
		if carbonOn {
			o.Notes = append(o.Notes, fmt.Sprintf(
				"regional pricing: %s electricity tariff, facility PUE %.2f, grid carbon intensity applied to lifetime wall energy; carbon priced at $%g/tCO2e",
				region, carbon.DefaultPUE, ts.CarbonPricePerTonne))
		}
		return o, nil
	}
	return []unit{{id: id, title: title, section: "scenario", run: run}}, nil
}

// --- Fleet comparison --------------------------------------------------------

// FleetComparison is the paper's §6 economic question asked of any platform
// set: price a baseline fleet with the 3-year TCO model, size every
// compared platform's web and Hadoop fleets to that same spend
// (SizeFleetForBudget), then measure what each equal-budget fleet actually
// delivers — peak web throughput across a Table-6-style scale ladder and
// one Hadoop job — reporting throughput-per-watt and throughput-per-dollar
// matrices. The equal_budget registry experiment is this workload over the
// whole catalog.
type FleetComparison struct {
	// ID names the artifact (default "fleet_comparison") and namespaces
	// per-point seeds: two comparisons in one scenario need distinct IDs.
	ID string
	// Baseline sets the budget: its catalog web (Fleet.Web+Fleet.Cache)
	// and Hadoop (Fleet.Slaves) fleets priced over 3 years. Defaults to
	// the baseline brawny platform (the paper's Dell R620). A custom
	// baseline needs positive catalog fleet sizes unless Budget is set.
	Baseline PlatformRef
	// Platforms is the compared set (default: the whole catalog).
	Platforms []PlatformRef
	// Job is the Hadoop workload the sized slave fleets run, one of
	// JobNames() (default "terasort").
	Job string
	// Budget, when positive, replaces both derived budgets with an
	// explicit 3-year spend in USD.
	Budget float64
}

func (fc *FleetComparison) expand(core.Config) ([]unit, error) {
	id := fc.ID
	if id == "" {
		id = "fleet_comparison"
	}
	baseline, err := fc.Baseline.resolve()
	if err != nil {
		return nil, err
	}
	var plats []*hw.Platform
	for _, r := range fc.Platforms {
		p, err := r.resolve()
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("edisim: %s: empty platform ref", id)
		}
		plats = append(plats, p)
	}
	if fc.Budget < 0 || math.IsNaN(fc.Budget) || math.IsInf(fc.Budget, 0) {
		return nil, fmt.Errorf("edisim: %s: budget $%v must be positive and finite", id, fc.Budget)
	}
	if fc.Job != "" {
		found := false
		for _, n := range jobs.Names() {
			found = found || n == fc.Job
		}
		if !found {
			return nil, unknownNameError("job", fc.Job, jobs.Names())
		}
	}
	// The same guard the sized fleets get downstream, surfaced at
	// expansion: a budget-less baseline must have a priceable catalog
	// fleet (positive node counts).
	if fc.Budget == 0 {
		b := baseline
		if b == nil {
			_, b = hw.BaselinePair()
		}
		if f := b.Fleet; f.Web <= 0 || f.Cache <= 0 || f.Slaves <= 0 {
			return nil, fmt.Errorf("edisim: %s: baseline %s has no catalog fleet to price (web %d, cache %d, slaves %d) — set Budget",
				id, b.Label, f.Web, f.Cache, f.Slaves)
		}
	}
	title := "Equal-budget fleet comparison"

	run := func(cfg core.Config) (*core.Outcome, error) {
		return core.EqualBudget(cfg, core.EqualBudgetSpec{
			SweepName: id,
			Baseline:  baseline,
			Platforms: plats,
			Job:       fc.Job,
			Budget:    fc.Budget,
		})
	}
	return []unit{{id: id, title: title, section: "scenario", run: run}}, nil
}
